// Command sgbench regenerates the paper's tables and figures (§8–§10) at a
// configurable scale. Each subcommand corresponds to one artifact; "all"
// runs everything in paper order.
//
// Usage:
//
//	sgbench [flags] table1|fig9|fig10|fig11|fig12|fig13|fig14|fig15|ablation|treecycle|theory|all
//
// Flags scale the study: -scale divides the Table 1 graph sizes, -workers /
// -workerslow set the simulated rank counts (the paper used 512 and 32
// Blue Gene/Q ranks), -graphs and -queries restrict the benchmark set.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/exp"
)

func main() {
	var (
		scale      = flag.Int("scale", 0, "stand-in size divisor (default 512)")
		backend    = flag.String("backend", "", "execution backend: sim (default; metrics-faithful) or parallel")
		workers    = flag.Int("workers", 0, "high simulated rank count (default 8)")
		workersLow = flag.Int("workerslow", 0, "low simulated rank count (default 2)")
		seed       = flag.Int64("seed", 1, "random seed")
		trials     = flag.Int("trials", 0, "Figure 15 trials per combo (default 10)")
		relerr     = flag.Float64("relerr", 0, "Figure 15 precision target: report the trial count at which the (relerr, confidence) stopping rule fires")
		confidence = flag.Float64("confidence", 0, "confidence level of -relerr (default 0.95)")
		graphs     = flag.String("graphs", "", "comma-separated stand-in subset")
		queries    = flag.String("queries", "", "comma-separated query subset")
	)
	flag.Parse()
	cfg := exp.Config{
		Scale:      *scale,
		Backend:    *backend,
		Workers:    *workers,
		WorkersLow: *workersLow,
		Seed:       *seed,
		Trials:     *trials,
		RelErr:     *relerr,
		Confidence: *confidence,
		Graphs:     split(*graphs),
		Queries:    split(*queries),
	}
	args := flag.Args()
	if len(args) == 0 {
		fmt.Fprintln(os.Stderr, "usage: sgbench [flags] table1|fig9|fig10|fig11|fig12|fig13|fig14|fig15|ablation|treecycle|theory|all")
		os.Exit(2)
	}
	for _, cmd := range args {
		if err := run(cmd, cfg); err != nil {
			fmt.Fprintln(os.Stderr, "sgbench:", err)
			os.Exit(1)
		}
	}
}

func run(cmd string, cfg exp.Config) error {
	w := os.Stdout
	start := time.Now()
	defer func() { fmt.Fprintf(w, "[%s took %v]\n", cmd, time.Since(start).Round(time.Millisecond)) }()
	switch cmd {
	case "table1":
		exp.Table1(w, cfg)
	case "fig9":
		_, err := exp.Figure9(w, cfg)
		return err
	case "fig10":
		_, err := exp.Figure10(w, cfg)
		return err
	case "fig11":
		_, err := exp.Figure11(w, cfg)
		return err
	case "fig12":
		_, err := exp.Figure12(w, cfg)
		return err
	case "fig13":
		if _, err := exp.Figure13Strong(w, cfg); err != nil {
			return err
		}
		_, err := exp.Figure13Weak(w, cfg)
		return err
	case "fig14":
		_, err := exp.Figure14(w, cfg)
		return err
	case "fig15":
		_, err := exp.Figure15(w, cfg)
		return err
	case "theory":
		_, err := exp.Theory(w, cfg)
		return err
	case "ablation":
		_, err := exp.Ablation(w, cfg)
		return err
	case "treecycle":
		_, err := exp.TreeVsCycle(w, cfg)
		return err
	case "all":
		for _, c := range []string{"table1", "fig9", "fig10", "fig11", "fig12", "fig13", "fig14", "fig15", "ablation", "treecycle", "theory"} {
			if err := run(c, cfg); err != nil {
				return err
			}
		}
	default:
		return fmt.Errorf("unknown experiment %q", cmd)
	}
	return nil
}

func split(s string) []string {
	if s == "" {
		return nil
	}
	parts := strings.Split(s, ",")
	for i := range parts {
		parts[i] = strings.TrimSpace(parts[i])
	}
	return parts
}
