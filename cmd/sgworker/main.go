// Command sgworker runs one distributed-backend worker process. A
// coordinator (sgserve -backend dist, or any program using internal/dist)
// connects, handshakes, and drives counting jobs over the wire protocol;
// the worker executes its assigned rank's partitions with the same
// deterministic solver as every other backend.
//
// Start two workers and a server that uses them:
//
//	sgworker -addr :9001 &
//	sgworker -addr :9002 &
//	sgserve -addr :8080 -backend dist -dist-workers localhost:9001,localhost:9002
//
// Each accepted connection is an independent session (rank assignment and
// jobs are per-connection), so one worker can serve several coordinators.
// Graphs are cached per process across sessions by structural
// fingerprint. SIGINT/SIGTERM close the listener and exit.
package main

import (
	"flag"
	"fmt"
	"log/slog"
	"net"
	"os"
	"os/signal"
	"strings"
	"syscall"

	"repro/internal/dist"
)

func main() {
	var (
		addr     = flag.String("addr", ":9001", "listen address (port 0 picks a free port; see -addr-file)")
		addrFile = flag.String("addr-file", "", "write the actually bound address to this file once listening (for scripts using -addr :0)")
		conc     = flag.Int("conc", 0, "goroutines executing this rank's partitions (0 = NumCPU)")
		cache    = flag.Int("graph-cache", 8, "decoded graphs kept per worker (fingerprint LRU)")
		logLevel = flag.String("log-level", "info", "log level: debug, info, warn, or error")
	)
	flag.Parse()

	level, err := parseLevel(*logLevel)
	if err != nil {
		fmt.Fprintln(os.Stderr, "sgworker:", err)
		os.Exit(1)
	}
	logger := slog.New(slog.NewTextHandler(os.Stderr, &slog.HandlerOptions{Level: level}))

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		logger.Error("listen failed", "addr", *addr, "err", err)
		os.Exit(1)
	}
	bound := ln.Addr().String()
	if *addrFile != "" {
		if err := os.WriteFile(*addrFile, []byte(bound+"\n"), 0o644); err != nil {
			logger.Error("addr-file write failed", "path", *addrFile, "err", err)
			os.Exit(1)
		}
	}
	logger.Info("worker listening", "addr", bound)

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	go func() {
		<-stop
		logger.Info("shutting down")
		ln.Close()
	}()

	// One cache for the whole process: coordinators that reconnect (or
	// several coordinators sharing the worker) reuse shipped graphs.
	opts := dist.WorkerOptions{Conc: *conc, Cache: dist.NewGraphCache(*cache), Logger: logger}
	for {
		c, err := ln.Accept()
		if err != nil {
			// Listener closed by the signal handler: exit cleanly. Any other
			// accept error on a closed listener reports the same way.
			logger.Info("listener closed", "err", err)
			return
		}
		logger.Info("coordinator connected", "peer", c.RemoteAddr().String())
		go func() {
			err := dist.ServeConn(c, opts)
			logger.Info("coordinator session ended", "peer", c.RemoteAddr().String(), "err", err)
		}()
	}
}

func parseLevel(s string) (slog.Level, error) {
	switch strings.ToLower(s) {
	case "debug":
		return slog.LevelDebug, nil
	case "info", "":
		return slog.LevelInfo, nil
	case "warn":
		return slog.LevelWarn, nil
	case "error":
		return slog.LevelError, nil
	}
	return 0, fmt.Errorf("bad -log-level %q (want debug, info, warn, or error)", s)
}
