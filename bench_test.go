package subgraph

// Benchmarks regenerating every table and figure of the paper's evaluation
// (one benchmark per artifact), plus kernel micro-benchmarks. Each figure
// benchmark runs the corresponding internal/exp experiment at a reduced
// scale chosen so a single iteration fits a small host; the sgbench CLI
// runs the same experiments at larger scales. Summary numbers are exposed
// via b.ReportMetric so the shapes (who wins, by what factor) land in the
// benchmark output; run with -benchtime=1x to execute each experiment once.

import (
	"io"
	"os"
	"sync"
	"testing"

	"repro/internal/exp"
	"repro/internal/powerlaw"
)

// benchCfg spans the skew spectrum (condMat mild, enron heavy, epinions
// heaviest, roadNetCA none) at a scale where the slowest combination stays
// around a second.
func benchCfg() exp.Config {
	return exp.Config{
		Scale:      512,
		Workers:    8,
		WorkersLow: 2,
		Seed:       1,
		Graphs:     []string{"condMat", "enron", "epinions", "roadNetCA"},
	}
}

// printOnce writes each experiment's table to stdout on its first run so
// the benchmark log contains the paper-shaped rows.
var printed sync.Map

func onceWriter(name string) io.Writer {
	if _, loaded := printed.LoadOrStore(name, true); loaded {
		return io.Discard
	}
	return os.Stdout
}

func BenchmarkTable1GraphStats(b *testing.B) {
	cfg := benchCfg()
	cfg.Graphs = nil // all ten rows
	for i := 0; i < b.N; i++ {
		rows := exp.Table1(onceWriter("table1"), cfg)
		if len(rows) != 10 {
			b.Fatalf("rows = %d", len(rows))
		}
	}
}

func BenchmarkFigure9AvgTime(b *testing.B) {
	cfg := benchCfg()
	for i := 0; i < b.N; i++ {
		res, err := exp.Figure9(onceWriter("fig9"), cfg)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(float64(res.LoadQuery["brain3"]), "brain3-avg-load")
			b.ReportMetric(float64(res.LoadQuery["youtube"]), "youtube-avg-load")
		}
	}
}

func BenchmarkFigure10ImprovementFactor(b *testing.B) {
	cfg := benchCfg()
	for i := 0; i < b.N; i++ {
		res, err := exp.Figure10(onceWriter("fig10"), cfg)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(res[0].AvgIF, "avgIF@low")
			b.ReportMetric(res[1].AvgIF, "avgIF@high")
			b.ReportMetric(res[1].MaxIF, "maxIF@high")
			b.ReportMetric(100*res[1].WinsFrac, "DBwins%@high")
		}
	}
}

func BenchmarkFigure11LoadBalance(b *testing.B) {
	cfg := benchCfg()
	for i := 0; i < b.N; i++ {
		rows, err := exp.Figure11(onceWriter("fig11"), cfg)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			var norm float64
			for _, r := range rows {
				norm += r.NormMaxDB
			}
			b.ReportMetric(norm/float64(len(rows)), "avg-norm-maxload-DB")
		}
	}
}

func BenchmarkFigure12Speedup(b *testing.B) {
	cfg := benchCfg()
	for i := 0; i < b.N; i++ {
		res, err := exp.Figure12(onceWriter("fig12"), cfg)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			var avg float64
			for _, sp := range res.PerQuery {
				avg += sp
			}
			b.ReportMetric(avg/float64(len(res.PerQuery)), "avg-modeled-speedup")
		}
	}
}

func BenchmarkFigure13StrongScaling(b *testing.B) {
	cfg := benchCfg()
	cfg.Workers = 16
	for i := 0; i < b.N; i++ {
		pts, err := exp.Figure13Strong(onceWriter("fig13s"), cfg)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			best := 0.0
			for _, p := range pts {
				if p.Speedup > best {
					best = p.Speedup
				}
			}
			b.ReportMetric(best, "best-speedup@16r")
		}
	}
}

func BenchmarkFigure13WeakScaling(b *testing.B) {
	cfg := benchCfg()
	// Long-cycle queries explode on the skewed R-MAT weak-scaling graphs;
	// keep the bench variant to the queries the host can sweep, the CLI
	// runs the full set.
	cfg.Queries = []string{"glet1", "glet2", "youtube", "wiki", "dros", "ecoli1"}
	for i := 0; i < b.N; i++ {
		if _, err := exp.Figure13Weak(onceWriter("fig13w"), cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFigure14PlanHeuristic(b *testing.B) {
	cfg := benchCfg()
	cfg.Graphs = []string{"enron"}
	cfg.Queries = []string{"brain1", "dros", "wiki", "youtube", "ecoli1"}
	for i := 0; i < b.N; i++ {
		res, err := exp.Figure14(onceWriter("fig14"), cfg)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(100*res.OptimalFrac, "optimal%")
			b.ReportMetric(res.MaxErrorPct, "max-err%")
		}
	}
}

func BenchmarkFigure15Precision(b *testing.B) {
	cfg := benchCfg()
	cfg.Trials = 10
	cfg.Queries = []string{"glet1", "glet2", "youtube", "wiki"}
	for i := 0; i < b.N; i++ {
		res, err := exp.Figure15(onceWriter("fig15"), cfg)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(100*res.FracGood3, "CV<=0.1%@3trials")
			b.ReportMetric(100*res.FracGoodFull, "CV<=0.1%@10trials")
		}
	}
}

func BenchmarkTheoryXY(b *testing.B) {
	cfg := benchCfg()
	for i := 0; i < b.N; i++ {
		res, err := exp.Theory(onceWriter("theory"), cfg)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			for _, s := range res.Slopes {
				if s.Alpha == 1.5 && s.Q == 3 {
					b.ReportMetric(s.SlopeY, "slopeY(a1.5,q3)")
					b.ReportMetric(s.SlopeX, "slopeX(a1.5,q3)")
					b.ReportMetric(s.RatioAtLargestN, "Y/X@32k")
				}
			}
		}
	}
}

// Kernel micro-benchmarks: the two cycle solvers on one skewed combo.

func benchCount(b *testing.B, alg Algorithm, queryName string) {
	g, _ := Standin("enron", 512, 1)
	q, err := QueryByName(queryName)
	if err != nil {
		b.Fatal(err)
	}
	colors := RandomColoring(g, q, 3)
	// Resolve the plan outside the loop so the bench isolates the solver.
	plan, err := Plan(q)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := CountColorful(g, q, colors, CountOptions{Algorithm: alg, Workers: 4, Plan: plan}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCountDBGlet2(b *testing.B)  { benchCount(b, DB, "glet2") }
func BenchmarkCountPSGlet2(b *testing.B)  { benchCount(b, PS, "glet2") }
func BenchmarkCountDBBrain1(b *testing.B) { benchCount(b, DB, "brain1") }
func BenchmarkCountPSBrain1(b *testing.B) { benchCount(b, PS, "brain1") }

func BenchmarkPlanEnumerationSatellite(b *testing.B) {
	q, _ := QueryByName("satellite")
	for i := 0; i < b.N; i++ {
		trees, err := EnumeratePlans(q)
		if err != nil || len(trees) != 19 {
			b.Fatalf("trees=%d err=%v", len(trees), err)
		}
	}
}

func BenchmarkChungLuGeneration(b *testing.B) {
	for i := 0; i < b.N; i++ {
		g := GeneratePowerLaw("pl", 100000, 1.5, int64(i))
		if g.N() != 100000 {
			b.Fatal("bad sample")
		}
	}
}

func BenchmarkPathStatsX4(b *testing.B) {
	g := GeneratePowerLaw("pl", 20000, 1.5, 9)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if powerlaw.XQ(g, 4, 2) == 0 {
			b.Fatal("degenerate")
		}
	}
}

func BenchmarkAblationEvenSplit(b *testing.B) {
	cfg := benchCfg()
	cfg.Graphs = []string{"epinions"}
	// Skip the slowest long-cycle queries so one iteration stays small; the
	// CLI runs the full set.
	cfg.Queries = []string{"dros", "ecoli1", "ecoli2", "brain1", "glet1", "glet2", "wiki", "youtube"}
	for i := 0; i < b.N; i++ {
		rows, err := exp.Ablation(onceWriter("ablation"), cfg)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			var pse, db float64
			for _, r := range rows {
				pse += float64(r.LoadPSEven) / float64(r.LoadPS)
				db += float64(r.LoadDB) / float64(r.LoadPS)
			}
			b.ReportMetric(pse/float64(len(rows)), "avg-PSE/PS-load")
			b.ReportMetric(db/float64(len(rows)), "avg-DB/PS-load")
		}
	}
}

func BenchmarkTreeVsCycleQueries(b *testing.B) {
	cfg := benchCfg()
	for i := 0; i < b.N; i++ {
		rows, err := exp.TreeVsCycle(onceWriter("treecycle"), cfg)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			var tree, cyc int64
			for _, r := range rows {
				if r.Query == "bintree12" {
					tree = r.AvgLoad
				}
				if r.Query == "brain3" {
					cyc = r.AvgLoad
				}
			}
			if tree > 0 {
				b.ReportMetric(float64(cyc)/float64(tree), "brain3/bintree12-load")
			}
		}
	}
}
