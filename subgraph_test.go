package subgraph

import (
	"context"
	"reflect"
	"strings"
	"testing"
)

// End-to-end smoke test through the public API only.
func TestPublicAPIEndToEnd(t *testing.T) {
	g := GeneratePowerLaw("pl", 500, 1.6, 1)
	if g.N() != 500 || g.M() == 0 {
		t.Fatalf("generator: N=%d M=%d", g.N(), g.M())
	}
	q, err := QueryByName("glet1")
	if err != nil {
		t.Fatal(err)
	}
	colors := RandomColoring(g, q, 2)
	cPS, _, err := CountColorful(g, q, colors, CountOptions{Algorithm: PS, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	cDB, stats, err := CountColorful(g, q, colors, CountOptions{Algorithm: DB, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if cPS != cDB {
		t.Fatalf("PS %d != DB %d", cPS, cDB)
	}
	if stats.Workers != 2 || stats.TotalLoad == 0 {
		t.Fatalf("stats: %+v", stats)
	}
	est, err := Estimate(g, q, EstimateOptions{Trials: 3, Seed: 5, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if est.Trials != 3 || est.Matches < 0 {
		t.Fatalf("estimate: %+v", est)
	}
	per, anchor, _, err := CountColorfulPerVertex(g, q, colors, -1, CountOptions{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	var sum uint64
	for _, c := range per {
		sum += c
	}
	if sum != cDB {
		t.Fatalf("per-vertex sum %d != total %d (anchor %d)", sum, cDB, anchor)
	}
}

func TestFacadeHelpers(t *testing.T) {
	if len(Queries()) != 10 {
		t.Fatal("catalog size")
	}
	if _, err := QueryByName("cycle6"); err != nil {
		t.Fatal(err)
	}
	if _, err := QueryByName("bogus"); err == nil {
		t.Fatal("unknown query accepted")
	}
	q, _ := QueryByName("glet2")
	plans, err := EnumeratePlans(q)
	if err != nil || len(plans) != 1 {
		t.Fatalf("plans: %v %v", plans, err)
	}
	p, err := Plan(q)
	if err != nil || p.Root == nil {
		t.Fatalf("plan: %v %v", p, err)
	}
	if ScaleFactor(3) != 4.5 {
		t.Fatal("ScaleFactor")
	}
	if _, ok := Standin("enron", 64, 1); !ok {
		t.Fatal("enron stand-in missing")
	}
	g, err := ReadGraph("r", strings.NewReader("0 1\n1 2\n"))
	if err != nil || g.M() != 2 {
		t.Fatalf("ReadGraph: %v %v", g, err)
	}
	tiny := NewGraph("tiny", 3, [][2]uint32{{0, 1}, {1, 2}, {0, 2}})
	tri := NewQuery("tri", 3, [][2]int{{0, 1}, {1, 2}, {0, 2}})
	if got := ExactCount(tiny, tri); got != 6 {
		t.Fatalf("ExactCount = %d", got)
	}
	rm := GenerateRMAT("rm", 8, 4, 3)
	if rm.N() != 256 {
		t.Fatalf("RMAT N = %d", rm.N())
	}
}

// TestSessionMatchesEstimate: the public incremental handle advanced T
// times equals Estimate with Trials: T bit-for-bit, on both backends
// (modulo Stats.Steals, scheduling telemetry on parallel).
func TestSessionMatchesEstimate(t *testing.T) {
	g := GeneratePowerLaw("pl", 400, 1.6, 9)
	q, err := QueryByName("glet1")
	if err != nil {
		t.Fatal(err)
	}
	for _, backend := range []string{"sim", "parallel"} {
		opts := EstimateOptions{Seed: 4, Backend: backend, Workers: 3}
		sess, err := NewSession(g, q, opts)
		if err != nil {
			t.Fatal(err)
		}
		for T := 1; T <= 5; T++ {
			if _, err := sess.Next(context.Background()); err != nil {
				t.Fatal(err)
			}
		}
		opts.Trials = 5
		batch, err := Estimate(g, q, opts)
		if err != nil {
			t.Fatal(err)
		}
		got, want := sess.Estimate(), batch
		got.Stats.Steals, want.Stats.Steals = 0, 0
		if !reflect.DeepEqual(got, want) {
			t.Errorf("%s: session differs from batch:\n%+v\n%+v", backend, got, want)
		}
	}
}

// TestEstimateSpecAdaptive: a declared-precision Estimate stops at some
// T within the bounds and equals the fixed Trials: T run; the session's
// Met reports the reached target.
func TestEstimateSpecAdaptive(t *testing.T) {
	g := GeneratePowerLaw("pl", 400, 1.6, 9)
	q, err := QueryByName("glet1")
	if err != nil {
		t.Fatal(err)
	}
	target := Precision{RelErr: 0.4, Confidence: 0.9}
	est, err := Estimate(g, q, EstimateOptions{
		Seed: 4, Workers: 2,
		Spec: Spec{Precision: target, MaxTrials: 64},
	})
	if err != nil {
		t.Fatal(err)
	}
	if est.Trials < 2 || est.Trials > 64 {
		t.Fatalf("adaptive trials = %d, want within [2,64]", est.Trials)
	}
	fixed, err := Estimate(g, q, EstimateOptions{Seed: 4, Workers: 2, Trials: est.Trials})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(est, fixed) {
		t.Fatalf("adaptive estimate differs from fixed at T=%d:\n%+v\n%+v", est.Trials, est, fixed)
	}
	if est.Trials < 64 && est.RelCI(0.9) > 0.4 {
		t.Errorf("early stop at %d trials but observed RelCI %.3f > target", est.Trials, est.RelCI(0.9))
	}

	sess, err := NewSession(g, q, EstimateOptions{Seed: 4, Workers: 2, Spec: Spec{Precision: target, MaxTrials: 64}})
	if err != nil {
		t.Fatal(err)
	}
	got, err := sess.RunToSpec(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if got.Trials != est.Trials {
		t.Errorf("session RunToSpec stopped at %d, Estimate at %d", got.Trials, est.Trials)
	}
	if !sess.Met(target) {
		t.Error("session does not report the reached target as met")
	}

	// Met must answer for the target alone — reaching the spec's trial
	// cap with the target unmet must not read as met (unlike the
	// stopping rule, which fires at the cap so bounded runs resolve).
	capped, err := NewSession(g, q, EstimateOptions{Seed: 4, Workers: 2, Spec: Spec{Precision: target, MaxTrials: 4}})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if _, err := capped.Next(context.Background()); err != nil {
			t.Fatal(err)
		}
	}
	tight := Precision{RelErr: 1e-9, Confidence: 0.999}
	if capped.Estimate().RelCI(0.999) > tight.RelErr && capped.Met(tight) {
		t.Error("Met reported an unmet target as satisfied at the trial cap")
	}
}

// TestEstimateBackendEquivalence: the public estimator must return
// bit-identical trial counts under both execution backends, at any worker
// count — the backend knob changes the runtime, never the answer.
func TestEstimateBackendEquivalence(t *testing.T) {
	g := GeneratePowerLaw("pl", 400, 1.6, 9)
	for _, qn := range []string{"glet1", "cycle5", "brain1"} {
		q, err := QueryByName(qn)
		if err != nil {
			t.Fatal(err)
		}
		sim, err := Estimate(g, q, EstimateOptions{Trials: 3, Seed: 4, Backend: "sim", Workers: 4})
		if err != nil {
			t.Fatal(err)
		}
		for _, workers := range []int{1, 3, 8} {
			par, err := Estimate(g, q, EstimateOptions{Trials: 3, Seed: 4, Backend: "parallel", Workers: workers})
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(sim.Counts, par.Counts) || sim.Matches != par.Matches || sim.CV != par.CV {
				t.Errorf("%s w=%d: backends diverged:\nsim      %v %.3f\nparallel %v %.3f",
					qn, workers, sim.Counts, sim.Matches, par.Counts, par.Matches)
			}
			if par.Stats.Backend != "parallel" || par.Stats.Messages != 0 {
				t.Errorf("%s w=%d: parallel stats malformed: %+v", qn, workers, par.Stats)
			}
		}
	}
}
